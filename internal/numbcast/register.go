package numbcast

import (
	"fmt"

	"homonyms/internal/hom"
	"homonyms/internal/msg"
	"homonyms/internal/protoreg"
	"homonyms/internal/sim"
	"homonyms/internal/trace"
)

// This file registers the multiplicity-broadcast primitive as a fuzz
// target, mirroring authbcast's registration but with the Appendix-A.3.1
// property statements: Correctness and Unforgeability carry multiplicity
// bounds (alpha' >= alpha, alpha' <= alpha + f_i), and the checker knows
// the true alpha of every (identifier, value) pair from the inputs. The
// claimed region is n > 3t with numerate reception and restricted
// Byzantine processes; the fuzzer probes innumerate and unrestricted
// variants where copy counting (and with it the bounds) breaks.

// fuzzValue is the broadcast body the fuzz host sends: a bare value.
type fuzzValue struct{ V hom.Value }

// Key implements msg.Payload.
func (f fuzzValue) Key() string { return msg.ScratchKey(f) }

// BuildKey implements msg.ScratchKeyer.
func (f fuzzValue) BuildKey(kb *msg.KeyBuilder) { kb.Reset("nbfuzz").Value(f.V) }

// hostAccept is one logged Accept with the round it was performed in.
type hostAccept struct {
	Accept
	Round int
}

// fuzzHost drives one Broadcaster inside the simulation engine.
type fuzzHost struct {
	ctx sim.Context
	bc  *Broadcaster
	log []hostAccept
}

var _ sim.Process = (*fuzzHost)(nil)

// Init implements sim.Process. The broadcaster is built without New's
// n > 3t check: probing degenerate thresholds is allowed as long as they
// stay positive (see Constructible).
func (h *fuzzHost) Init(ctx sim.Context) {
	h.ctx = ctx
	h.bc = newBroadcaster(ctx.Params.N, ctx.Params.L, ctx.Params.T)
}

// Release implements sim.Releaser: the engines call it when the execution
// ends, returning the broadcaster's arena to the shared pool.
func (h *fuzzHost) Release() { h.bc.Release() }

// Prepare implements sim.Process.
func (h *fuzzHost) Prepare(round int) []msg.Send {
	if IsInitRound(round) {
		h.bc.Broadcast(fuzzValue{V: h.ctx.Input})
	}
	if pl := h.bc.Outgoing(round); pl != nil {
		return []msg.Send{msg.Broadcast(pl)}
	}
	return nil
}

// Receive implements sim.Process.
func (h *fuzzHost) Receive(round int, in *msg.Inbox) {
	for _, a := range h.bc.Ingest(round, in) {
		h.log = append(h.log, hostAccept{Accept: a, Round: round})
	}
}

// Decision implements sim.Process; hosts never decide.
func (h *fuzzHost) Decision() (hom.Value, bool) { return hom.NoValue, false }

// acceptedBy reports whether the host logged an Accept of (body, id, sr)
// with multiplicity at least alpha, at or before the given round.
func (h *fuzzHost) acceptedBy(bodyKey string, id hom.Identifier, sr, alpha, byRound int) bool {
	for _, a := range h.log {
		if a.Round <= byRound && a.ID == id && a.SR == sr && a.Alpha >= alpha && a.Body.Key() == bodyKey {
			return true
		}
	}
	return false
}

// check verifies the multiplicity broadcast's Correctness, Unforgeability
// and Relay over a finished host execution.
func check(res *sim.Result, procs []sim.Process) trace.Verdict {
	var verdict trace.Verdict
	correct := res.CorrectSlots()
	hosts := make(map[int]*fuzzHost, len(correct))
	var hostSlots []int
	for _, s := range correct {
		if h, ok := procs[s].(*fuzzHost); ok {
			hosts[s] = h
			hostSlots = append(hostSlots, s)
		}
	}
	stab := (res.GST + 2) / 2
	lastFull := res.Rounds / 2

	// Ground truth: alphaTrue[(id, bodyKey)] counts the correct holders
	// of id broadcasting that value (every superround), byzHolders[id]
	// the Byzantine holders (the f_i of the unforgeability bound).
	type pair struct {
		id  hom.Identifier
		key string
	}
	alphaTrue := make(map[pair]int)
	var pairs []pair // deterministic iteration order
	for _, s := range correct {
		pr := pair{res.Assignment[s], fuzzValue{V: res.Inputs[s]}.Key()}
		if alphaTrue[pr] == 0 {
			pairs = append(pairs, pr)
		}
		alphaTrue[pr]++
	}
	byzHolders := make(map[hom.Identifier]int)
	for _, s := range res.Corrupted {
		byzHolders[res.Assignment[s]]++
	}
	// Faulted slots (injected crash/omission faults) count toward f_i
	// like Byzantine holders: a holder that crashed mid-superround can
	// legitimately contribute partial multiplicity that the bound must
	// absorb rather than flag as forged.
	for _, s := range res.Faulted {
		byzHolders[res.Assignment[s]]++
	}

	// Correctness: in every stabilised superround sr, every correct
	// process accepts (i, alpha' >= alpha, m, sr) within the superround.
correctness:
	for sr := stab; sr <= lastFull; sr++ {
		for _, pr := range pairs {
			for _, q := range hostSlots {
				if !hosts[q].acceptedBy(pr.key, pr.id, sr, alphaTrue[pr], 2*sr) {
					verdict.Violations = append(verdict.Violations, trace.Violation{
						Property: trace.BroadcastCorrectness,
						Detail: fmt.Sprintf("slot %d did not accept (%q, identifier %d) with multiplicity >= %d in stabilised superround %d",
							q, pr.key, pr.id, alphaTrue[pr], sr),
					})
					break correctness
				}
			}
		}
	}

	// Unforgeability: alpha' <= alpha + f_i for every accept.
unforgeability:
	for _, q := range hostSlots {
		for _, a := range hosts[q].log {
			bound := alphaTrue[pair{a.ID, a.Body.Key()}] + byzHolders[a.ID]
			if a.Alpha > bound {
				verdict.Violations = append(verdict.Violations, trace.Violation{
					Property: trace.BroadcastUnforgeability,
					Detail: fmt.Sprintf("slot %d accepted (%q, identifier %d) with multiplicity %d > alpha+f_i = %d",
						q, a.Body.Key(), a.ID, a.Alpha, bound),
				})
				break unforgeability
			}
		}
	}

	// Relay: an accept of (i, alpha, m, r) in superround r' reaches every
	// correct process, with multiplicity at least alpha, by superround
	// max(r', stab) + 1.
relay:
	for _, q := range hostSlots {
		for _, a := range hosts[q].log {
			deadline := Superround(a.Round)
			if deadline < stab {
				deadline = stab
			}
			deadline++
			if 2*deadline > res.Rounds {
				continue // deadline beyond the budget: not checkable
			}
			for _, q2 := range hostSlots {
				if !hosts[q2].acceptedBy(a.Body.Key(), a.ID, a.SR, a.Alpha, 2*deadline) {
					verdict.Violations = append(verdict.Violations, trace.Violation{
						Property: trace.BroadcastRelay,
						Detail: fmt.Sprintf("slot %d accepted (%q, identifier %d, alpha %d) in superround %d but slot %d had not by superround %d",
							q, a.Body.Key(), a.ID, a.Alpha, Superround(a.Round), q2, deadline),
					})
					break relay
				}
			}
		}
	}
	return verdict
}

func init() {
	protoreg.Register(protoreg.Protocol{
		Name: "numbcast",
		Claims: func(p hom.Params) (bool, string) {
			if !p.Numerate {
				return false, "multiplicity broadcast needs numerate reception"
			}
			if !p.RestrictedByzantine {
				return false, "unrestricted Byzantine processes can inflate copy counts"
			}
			if p.N <= 3*p.T {
				return false, fmt.Sprintf("n = %d <= 3t = %d", p.N, 3*p.T)
			}
			return true, fmt.Sprintf("n = %d > 3t = %d (Appendix A.3.1)", p.N, 3*p.T)
		},
		ClaimsFaults: func(p hom.Params, byz, faulted int) (bool, string) {
			// The multiplicity bound alpha+f_i counts untrusted holders;
			// crashed/omitting holders join f_i, so the n > 3t condition
			// absorbs them while byz+faulted fits t.
			return protoreg.DefaultClaimsFaults(p, byz, faulted)
		},
		Constructible: func(p hom.Params) (bool, string) {
			if p.N <= 2*p.T {
				return false, "echo threshold n-2t must be positive"
			}
			return true, "ok"
		},
		New: func(p hom.Params) (func(slot int) sim.Process, error) {
			return func(int) sim.Process { return &fuzzHost{} }, nil
		},
		Rounds: func(p hom.Params, gst int) int {
			return gst + 12
		},
		Check: check,
		Forge: func(p hom.Params, round int, v hom.Value) []msg.Payload {
			sr := Superround(round)
			body := fuzzValue{V: v}
			echoes := make([]EchoTuple, 0, p.L)
			for id := 1; id <= p.L; id++ {
				echoes = append(echoes, EchoTuple{H: hom.Identifier(id), A: p.N, Body: body, K: sr})
			}
			return []msg.Payload{NewBundle([]InitTuple{{Body: body}}, echoes)}
		},
	})
}
