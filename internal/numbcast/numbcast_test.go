package numbcast

import (
	"errors"
	"testing"

	"homonyms/internal/hom"
	"homonyms/internal/msg"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3, 1, 1); !errors.Is(err, ErrResilience) {
		t.Fatalf("New(3,1,1) err = %v, want ErrResilience", err)
	}
	if _, err := New(4, 2, 1); err != nil {
		t.Fatalf("New(4,2,1): %v", err)
	}
}

func bundleMsg(id hom.Identifier, b *Bundle) msg.Message {
	return msg.Message{ID: id, Body: b}
}

func ingest(t *testing.T, b *Broadcaster, round int, raw []msg.Message) []Accept {
	t.Helper()
	return b.Ingest(round, msg.NewInbox(true, raw))
}

func TestInitCountingUsesCopies(t *testing.T) {
	// n = 7, t = 2. Three clone processes with identifier 1 broadcast the
	// same m: the init count must be 3.
	b, err := New(7, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	initBundle := NewBundle([]InitTuple{{Body: body}}, nil)
	raw := []msg.Message{
		bundleMsg(1, initBundle),
		bundleMsg(1, initBundle),
		bundleMsg(1, initBundle),
	}
	ingest(t, b, 1, raw) // init round of superround 1
	out := b.Outgoing(2)
	bundle, ok := out.(*Bundle)
	if !ok {
		t.Fatalf("Outgoing(2) = %T, want *Bundle", out)
	}
	if len(bundle.Echoes) != 1 {
		t.Fatalf("echoes = %d, want 1", len(bundle.Echoes))
	}
	e := bundle.Echoes[0]
	if e.H != 1 || e.A != 3 || e.K != 1 {
		t.Fatalf("echo = %+v, want (h=1, a=3, k=1)", e)
	}
}

func TestAcceptRequiresCopiesThreshold(t *testing.T) {
	// n = 4, t = 1: accept needs n-t = 3 message copies with alpha' >= alpha.
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	echo := func(a int) *Bundle {
		return NewBundle(nil, []EchoTuple{{H: 1, A: a, Body: body, K: 1}})
	}
	// Two copies only: no accept (round 2 = accept round).
	acc := ingest(t, b, 2, []msg.Message{
		bundleMsg(1, echo(2)),
		bundleMsg(2, echo(2)),
	})
	if len(acc) != 0 {
		t.Fatalf("accepted below threshold: %v", acc)
	}
	// Three copies with alphas {2, 2, 1}: alpha2 = max alpha with 3
	// supporting copies = 1; with 2 copies supporting alpha=2 it is not
	// enough for alpha=2.
	acc = ingest(t, b, 4, []msg.Message{
		bundleMsg(1, echo(2)),
		bundleMsg(2, echo(2)),
		bundleMsg(3, echo(1)),
	})
	if len(acc) != 1 {
		t.Fatalf("accept count = %d, want 1", len(acc))
	}
	if acc[0].Alpha != 1 || acc[0].ID != 1 || acc[0].SR != 1 {
		t.Fatalf("accept = %+v, want alpha=1 id=1 sr=1", acc[0])
	}
}

func TestAcceptAlphaPrefersHighSupportedValue(t *testing.T) {
	// Copies with alphas {3, 3, 3, 1}: alpha2 = 3 (three copies >= 3).
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	echo := func(a int) *Bundle {
		return NewBundle(nil, []EchoTuple{{H: 2, A: a, Body: body, K: 1}})
	}
	acc := ingest(t, b, 2, []msg.Message{
		bundleMsg(1, echo(3)),
		bundleMsg(2, echo(3)),
		bundleMsg(3, echo(3)),
		bundleMsg(4, echo(1)),
	})
	if len(acc) != 1 || acc[0].Alpha != 3 {
		t.Fatalf("accept = %+v, want alpha=3", acc)
	}
}

func TestNoAcceptInInitRound(t *testing.T) {
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	echo := NewBundle(nil, []EchoTuple{{H: 1, A: 1, Body: body, K: 1}})
	acc := ingest(t, b, 3, []msg.Message{ // round 3 is an init round
		bundleMsg(1, echo),
		bundleMsg(2, echo),
		bundleMsg(3, echo),
	})
	if len(acc) != 0 {
		t.Fatalf("accepted during an init round (unicity): %v", acc)
	}
}

func TestEstimateAdoption(t *testing.T) {
	// n-2t = 2 copies suffice to adopt an estimate into the local table
	// (relay), but not to accept.
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	echo := NewBundle(nil, []EchoTuple{{H: 1, A: 2, Body: body, K: 1}})
	ingest(t, b, 2, []msg.Message{
		bundleMsg(1, echo),
		bundleMsg(2, echo),
	})
	out := b.Outgoing(3)
	bundle, ok := out.(*Bundle)
	if !ok || len(bundle.Echoes) != 1 || bundle.Echoes[0].A != 2 {
		t.Fatalf("estimate not adopted: %v", out)
	}
}

func TestInvalidBundlesDiscarded(t *testing.T) {
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	// Duplicate echo tuples for the same (h, m, k) make the bundle
	// invalid — a Byzantine copy-inflation attempt.
	bad := NewBundle(nil, []EchoTuple{
		{H: 1, A: 5, Body: body, K: 1},
		{H: 1, A: 7, Body: body, K: 1},
	})
	ingest(t, b, 2, []msg.Message{
		bundleMsg(1, bad), bundleMsg(2, bad), bundleMsg(3, bad),
	})
	if b.TableSize() != 0 {
		t.Fatal("invalid bundle was processed")
	}
	// Init tuples outside an init round invalidate the bundle.
	badInit := NewBundle([]InitTuple{{Body: body}}, nil)
	acc := ingest(t, b, 2, []msg.Message{bundleMsg(1, badInit)})
	if len(acc) != 0 || b.TableSize() != 0 {
		t.Fatal("init outside init round was processed")
	}
	// Future-superround echoes invalidate the bundle.
	future := NewBundle(nil, []EchoTuple{{H: 1, A: 1, Body: body, K: 9}})
	ingest(t, b, 2, []msg.Message{bundleMsg(1, future)})
	if b.TableSize() != 0 {
		t.Fatal("future echo was processed")
	}
}

func TestBundleKeyCanonical(t *testing.T) {
	body := msg.Raw("m")
	a := NewBundle(
		[]InitTuple{{Body: msg.Raw("x")}, {Body: msg.Raw("y")}},
		[]EchoTuple{{H: 2, A: 1, Body: body, K: 1}, {H: 1, A: 1, Body: body, K: 1}},
	)
	b := NewBundle(
		[]InitTuple{{Body: msg.Raw("y")}, {Body: msg.Raw("x")}},
		[]EchoTuple{{H: 1, A: 1, Body: body, K: 1}, {H: 2, A: 1, Body: body, K: 1}},
	)
	if a.Key() != b.Key() {
		t.Fatal("bundle key depends on construction order")
	}
}

func TestOutgoingNilWhenEmpty(t *testing.T) {
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := b.Outgoing(1); out != nil {
		t.Fatalf("empty broadcaster produced %v", out)
	}
}

func TestUnforgeabilityBound(t *testing.T) {
	// One Byzantine identifier-1 process (f1 = 1) inflates its alpha; a
	// correct receiver's accepted alpha must not exceed alpha_true + f1
	// when thresholds require corroboration from correct copies.
	// n = 4, t = 1: accept needs 3 copies. Byzantine contributes 1 copy
	// with alpha = 100; two correct copies carry alpha = 1: accepted
	// alpha is 1 (the third-highest supported), far below the forgery.
	b, err := New(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := msg.Raw("m")
	acc := ingest(t, b, 2, []msg.Message{
		bundleMsg(1, NewBundle(nil, []EchoTuple{{H: 1, A: 100, Body: body, K: 1}})),
		bundleMsg(2, NewBundle(nil, []EchoTuple{{H: 1, A: 1, Body: body, K: 1}})),
		bundleMsg(3, NewBundle(nil, []EchoTuple{{H: 1, A: 1, Body: body, K: 1}})),
	})
	if len(acc) != 1 || acc[0].Alpha != 1 {
		t.Fatalf("accept = %+v, want alpha=1 despite inflation", acc)
	}
}
