// Package numbcast implements the paper's Figure-6 authenticated broadcast
// with multiplicities, for numerate processes against restricted Byzantine
// processes (Appendix A.3.1). Where package authbcast counts distinct
// identifiers, this primitive counts message copies and carries an
// explicit multiplicity estimate α with each Accept:
//
//   - Correctness: if α correct processes with identifier i perform
//     Broadcast(i, m, r) in superround r ≥ T, every correct process
//     performs Accept(i, α′, m, r) with α′ ≥ α during superround r.
//   - Relay: if a correct process performs Accept(i, α, m, r) in
//     superround r′ ≥ r, every correct process performs
//     Accept(i, α′, m, r) with α′ ≥ α in superround max(r′, T)+1.
//   - Unforgeability: if α correct processes with identifier i perform
//     Broadcast(i, m, r) and some correct process performs
//     Accept(i, α′, m, r), then 0 ≤ α′ ≤ α + f_i where f_i is the number
//     of Byzantine processes holding identifier i.
//   - Unicity: at most one Accept(i, ∗, m, r) per superround.
//
// Wire protocol: each process sends one bundle per round containing its
// entire table a[h, m, k] as (echo, h, a[h,m,k], m, k) tuples, plus
// (init, i, m, r) tuples in the first round of superround r for each
// Broadcast it performs. A bundle is valid if it contains at most one init
// tuple per (m, r) with r the current superround, and at most one echo
// tuple per (h, m, k); invalid bundles are discarded entirely. Thresholds
// n−2t (adopt an estimate) and n−t (accept) count received bundle copies
// — this is where numeracy is essential.
package numbcast

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"homonyms/internal/hom"
	"homonyms/internal/msg"
)

// Validation errors.
var (
	ErrResilience = errors.New("numbcast: multiplicity broadcast requires n > 3t")
)

// Superround maps a 1-based round to its 1-based superround (rounds 2r−1
// and 2r form superround r).
func Superround(round int) int { return (round + 1) / 2 }

// IsInitRound reports whether the round is the first round of its
// superround.
func IsInitRound(round int) bool { return round%2 == 1 }

// InitTuple is an (init, m) element of a bundle; the sender identifier and
// superround are implicit (stamped identifier, current round).
type InitTuple struct {
	Body msg.Payload
}

// EchoTuple is an (echo, h, α, m, k) element of a bundle.
type EchoTuple struct {
	H    hom.Identifier
	A    int
	Body msg.Payload
	K    int
}

// Bundle is the single per-round message of the Figure-6 protocol.
type Bundle struct {
	Inits  []InitTuple
	Echoes []EchoTuple
	key    string
}

// NewBundle builds a bundle in canonical order with a cached key.
func NewBundle(inits []InitTuple, echoes []EchoTuple) *Bundle {
	is := append([]InitTuple(nil), inits...)
	es := append([]EchoTuple(nil), echoes...)
	sort.Slice(is, func(a, b int) bool { return is[a].Body.Key() < is[b].Body.Key() })
	sort.Slice(es, func(a, b int) bool { return echoLess(es[a], es[b]) })
	var b strings.Builder
	b.WriteString("numbundle")
	for _, it := range is {
		b.WriteString("|i:")
		b.WriteString(it.Body.Key())
	}
	for _, et := range es {
		b.WriteString("|e:")
		b.WriteString(strconv.Itoa(int(et.H)))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(et.A))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(et.K))
		b.WriteByte(',')
		b.WriteString(et.Body.Key())
	}
	return &Bundle{Inits: is, Echoes: es, key: b.String()}
}

func echoLess(a, b EchoTuple) bool {
	if a.H != b.H {
		return a.H < b.H
	}
	if a.K != b.K {
		return a.K < b.K
	}
	if a.Body.Key() != b.Body.Key() {
		return a.Body.Key() < b.Body.Key()
	}
	return a.A < b.A
}

// Key implements msg.Payload.
func (b *Bundle) Key() string { return b.key }

// Accept records one Accept(i, α, m, r) action.
type Accept struct {
	ID    hom.Identifier
	Alpha int
	Body  msg.Payload
	SR    int
}

// entry is one a[h, m, k] table cell.
type entry struct {
	h     hom.Identifier
	body  msg.Payload
	k     int
	alpha int
}

// Broadcaster is the per-process Figure-6 component. Construct with New.
type Broadcaster struct {
	n, t    int
	l       int
	pending []msg.Payload
	table   map[string]*entry // cell key -> cell
	order   []string
}

// New returns a broadcaster for n processes with l identifiers and at most
// t restricted Byzantine processes.
func New(n, l, t int) (*Broadcaster, error) {
	if n <= 3*t {
		return nil, ErrResilience
	}
	return &Broadcaster{n: n, t: t, l: l, table: make(map[string]*entry)}, nil
}

// Broadcast queues m for initiation at the next init round under the
// host's identifier.
func (b *Broadcaster) Broadcast(m msg.Payload) {
	b.pending = append(b.pending, m)
}

// Outgoing returns the single bundle to broadcast this round, or nil when
// there is nothing to send (empty table and no pending init).
func (b *Broadcaster) Outgoing(round int) msg.Payload {
	var inits []InitTuple
	if IsInitRound(round) {
		for _, m := range b.pending {
			inits = append(inits, InitTuple{Body: m})
		}
		b.pending = nil
	}
	var echoes []EchoTuple
	for _, k := range b.order {
		cell := b.table[k]
		if cell.alpha > 0 {
			echoes = append(echoes, EchoTuple{H: cell.h, A: cell.alpha, Body: cell.body, K: cell.k})
		}
	}
	if len(inits) == 0 && len(echoes) == 0 {
		return nil
	}
	return NewBundle(inits, echoes)
}

// validBundle applies the paper's validity rules for a message received at
// the given round: at most one init tuple per (m) (with the init bound to
// the current superround), and at most one echo tuple per (h, m, k) with
// k at most the current superround.
func validBundle(bundle *Bundle, round int) bool {
	sr := Superround(round)
	seenInit := make(map[string]bool, len(bundle.Inits))
	for _, it := range bundle.Inits {
		if it.Body == nil {
			return false
		}
		k := it.Body.Key()
		if seenInit[k] {
			return false
		}
		seenInit[k] = true
	}
	if len(bundle.Inits) > 0 && !IsInitRound(round) {
		return false
	}
	seenEcho := make(map[string]bool, len(bundle.Echoes))
	for _, et := range bundle.Echoes {
		if et.Body == nil || et.A < 0 || et.K < 1 || et.K > sr || !et.H.IsValid(maxIdentifiers) {
			return false
		}
		k := strconv.Itoa(int(et.H)) + "/" + strconv.Itoa(et.K) + "/" + et.Body.Key()
		if seenEcho[k] {
			return false
		}
		seenEcho[k] = true
	}
	return true
}

// maxIdentifiers bounds identifier validation inside bundles; actual
// protocol identifiers are validated against l by the host, this guard
// only rejects nonsense.
const maxIdentifiers = 1 << 20

// cellKey builds the canonical a[h, m, k] cell key.
func cellKey(h hom.Identifier, body msg.Payload, k int) string {
	return strconv.Itoa(int(h)) + "/" + strconv.Itoa(k) + "/" + body.Key()
}

func (b *Broadcaster) cell(h hom.Identifier, body msg.Payload, k int) *entry {
	key := cellKey(h, body, k)
	if c, ok := b.table[key]; ok {
		return c
	}
	c := &entry{h: h, body: body, k: k}
	b.table[key] = c
	b.order = append(b.order, key)
	return c
}

// Ingest processes the round's inbox. Accepts are only performed in the
// second round of each superround (unicity); the returned slice is in
// deterministic order.
func (b *Broadcaster) Ingest(round int, in *msg.Inbox) []Accept {
	sr := Superround(round)

	// Gather valid bundles with their copy counts.
	type recv struct {
		id     hom.Identifier
		bundle *Bundle
		copies int
	}
	var bundles []recv
	for _, m := range in.Messages() {
		bundle, ok := m.Body.(*Bundle)
		if !ok || !validBundle(bundle, round) {
			continue
		}
		bundles = append(bundles, recv{id: m.ID, bundle: bundle, copies: in.Count(m)})
	}

	// Lines 13–14: init counting (first round of a superround). α is the
	// total number of valid message copies from identifier h containing
	// (init, h, m, sr).
	if IsInitRound(round) {
		initCounts := make(map[string]int)
		initMeta := make(map[string]struct {
			h    hom.Identifier
			body msg.Payload
		})
		for _, r := range bundles {
			for _, it := range r.bundle.Inits {
				key := cellKey(r.id, it.Body, sr)
				initCounts[key] += r.copies
				initMeta[key] = struct {
					h    hom.Identifier
					body msg.Payload
				}{r.id, it.Body}
			}
		}
		keys := make([]string, 0, len(initCounts))
		for k := range initCounts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			meta := initMeta[k]
			c := b.cell(meta.h, meta.body, sr)
			if initCounts[k] > 0 {
				c.alpha = initCounts[k]
			}
		}
	}

	// Lines 15–18: adopt echo estimates supported by n−2t message copies.
	// For each (h, m, k), α1 = max{α : at least n−2t copies carried
	// (echo, h, α′, m, k) with α′ ≥ α}.
	echoSupport := make(map[string][]struct{ alpha, copies int })
	echoMeta := make(map[string]struct {
		h    hom.Identifier
		body msg.Payload
		k    int
	})
	for _, r := range bundles {
		for _, et := range r.bundle.Echoes {
			key := cellKey(et.H, et.Body, et.K)
			echoSupport[key] = append(echoSupport[key], struct{ alpha, copies int }{et.A, r.copies})
			echoMeta[key] = struct {
				h    hom.Identifier
				body msg.Payload
				k    int
			}{et.H, et.Body, et.K}
		}
	}
	echoKeys := make([]string, 0, len(echoSupport))
	for k := range echoSupport {
		echoKeys = append(echoKeys, k)
	}
	sort.Strings(echoKeys)

	var accepts []Accept
	for _, key := range echoKeys {
		support := echoSupport[key]
		meta := echoMeta[key]
		if alpha1, ok := thresholdAlpha(support, b.n-2*b.t); ok {
			c := b.cell(meta.h, meta.body, meta.k)
			if alpha1 > c.alpha {
				c.alpha = alpha1
			}
		}
		// Lines 19–21: accept on n−t copies, in the second round of the
		// superround only.
		if !IsInitRound(round) {
			if alpha2, ok := thresholdAlpha(support, b.n-b.t); ok {
				accepts = append(accepts, Accept{ID: meta.h, Alpha: alpha2, Body: meta.body, SR: meta.k})
			}
		}
	}
	return accepts
}

// thresholdAlpha returns the largest α such that message copies carrying
// α′ ≥ α number at least need; ok is false when even α = 0 lacks support.
func thresholdAlpha(support []struct{ alpha, copies int }, need int) (int, bool) {
	if need <= 0 {
		need = 1
	}
	sorted := append([]struct{ alpha, copies int }(nil), support...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].alpha > sorted[j].alpha })
	run := 0
	for _, s := range sorted {
		run += s.copies
		if run >= need {
			return s.alpha, true
		}
	}
	return 0, false
}

// TableSize reports the number of tracked cells (tests and memory
// accounting).
func (b *Broadcaster) TableSize() int { return len(b.table) }
