// Package numbcast implements the paper's Figure-6 authenticated broadcast
// with multiplicities, for numerate processes against restricted Byzantine
// processes (Appendix A.3.1). Where package authbcast counts distinct
// identifiers, this primitive counts message copies and carries an
// explicit multiplicity estimate α with each Accept:
//
//   - Correctness: if α correct processes with identifier i perform
//     Broadcast(i, m, r) in superround r ≥ T, every correct process
//     performs Accept(i, α′, m, r) with α′ ≥ α during superround r.
//   - Relay: if a correct process performs Accept(i, α, m, r) in
//     superround r′ ≥ r, every correct process performs
//     Accept(i, α′, m, r) with α′ ≥ α in superround max(r′, T)+1.
//   - Unforgeability: if α correct processes with identifier i perform
//     Broadcast(i, m, r) and some correct process performs
//     Accept(i, α′, m, r), then 0 ≤ α′ ≤ α + f_i where f_i is the number
//     of Byzantine processes holding identifier i.
//   - Unicity: at most one Accept(i, ∗, m, r) per superround.
//
// Wire protocol: each process sends one bundle per round containing its
// entire table a[h, m, k] as (echo, h, a[h,m,k], m, k) tuples, plus
// (init, i, m, r) tuples in the first round of superround r for each
// Broadcast it performs. A bundle is valid if it contains at most one init
// tuple per (m, r) with r the current superround, and at most one echo
// tuple per (h, m, k); invalid bundles are discarded entirely. Thresholds
// n−2t (adopt an estimate) and n−t (accept) count received bundle copies
// — this is where numeracy is essential.
//
// The per-round bookkeeping is string-free: every a[h, m, k] cell key is
// symbolized once in a broadcaster-local intern table, the table itself is
// a flat arena indexed through the dense KeyIDs, and the per-round init
// counts, echo support groups and bundle-validity dedup all run on
// KeyID-indexed scratch arrays (generation stamps instead of transient
// maps). Release returns the whole table to a pool for the next execution.
package numbcast

import (
	"errors"
	"sort"
	"sync"

	"homonyms/internal/hom"
	"homonyms/internal/msg"
)

// Validation errors.
var (
	ErrResilience = errors.New("numbcast: multiplicity broadcast requires n > 3t")
)

// Superround maps a 1-based round to its 1-based superround (rounds 2r−1
// and 2r form superround r).
func Superround(round int) int { return (round + 1) / 2 }

// IsInitRound reports whether the round is the first round of its
// superround.
func IsInitRound(round int) bool { return round%2 == 1 }

// InitTuple is an (init, m) element of a bundle; the sender identifier and
// superround are implicit (stamped identifier, current round).
type InitTuple struct {
	Body msg.Payload
}

// EchoTuple is an (echo, h, α, m, k) element of a bundle.
type EchoTuple struct {
	H    hom.Identifier
	A    int
	Body msg.Payload
	K    int
}

// Bundle is the single per-round message of the Figure-6 protocol.
type Bundle struct {
	Inits  []InitTuple
	Echoes []EchoTuple
	key    string
}

// NewBundle builds a bundle in canonical order with a cached key. The key
// embeds tuple bodies through the escaping KeyBuilder path, so bodies
// containing separator bytes cannot make two distinct bundles collide.
func NewBundle(inits []InitTuple, echoes []EchoTuple) *Bundle {
	is := append([]InitTuple(nil), inits...)
	es := append([]EchoTuple(nil), echoes...)
	sort.Slice(is, func(a, b int) bool { return is[a].Body.Key() < is[b].Body.Key() })
	sort.Slice(es, func(a, b int) bool { return echoLess(es[a], es[b]) })
	kb := msg.NewKey("numbundle").Int(len(is))
	for _, it := range is {
		kb.Nested(it.Body)
	}
	for _, et := range es {
		kb.Identifier(et.H).Int(et.A).Int(et.K).Nested(et.Body)
	}
	return &Bundle{Inits: is, Echoes: es, key: kb.String()}
}

func echoLess(a, b EchoTuple) bool {
	if a.H != b.H {
		return a.H < b.H
	}
	if a.K != b.K {
		return a.K < b.K
	}
	if a.Body.Key() != b.Body.Key() {
		return a.Body.Key() < b.Body.Key()
	}
	return a.A < b.A
}

// Key implements msg.Payload.
func (b *Bundle) Key() string { return b.key }

// Accept records one Accept(i, α, m, r) action.
type Accept struct {
	ID    hom.Identifier
	Alpha int
	Body  msg.Payload
	SR    int
}

// entry is one a[h, m, k] table cell. Cells live by value in the arena in
// first-sight order; the cell key's dense KeyID locates them through the
// cellAt index.
type entry struct {
	h     hom.Identifier
	body  msg.Payload
	k     int
	alpha int
}

// alphaCopy is one (α, copies) support sample for a cell.
type alphaCopy struct {
	alpha, copies int
}

// initAcc accumulates one init-round count for a cell key.
type initAcc struct {
	kid   msg.KeyID
	h     hom.Identifier
	body  msg.Payload
	count int
}

// echoAcc accumulates the round's echo support for a cell key.
type echoAcc struct {
	kid     msg.KeyID
	h       hom.Identifier
	body    msg.Payload
	k       int
	support []alphaCopy
}

// recvBundle is one valid received bundle with its copy count.
type recvBundle struct {
	id     hom.Identifier
	bundle *Bundle
	copies int
}

// ntable is the recyclable storage of a Broadcaster: the intern table,
// the cell arena, and every KeyID-indexed per-round scratch array.
type ntable struct {
	keys   *msg.Interner
	kb     msg.KeyBuilder
	cells  []entry
	cellAt []int32 // KeyID -> arena index + 1; 0 = no cell

	// Per-round scratch, reused across rounds.
	seen    []uint64 // KeyID -> bundle-validity generation stamp
	seenGen uint64
	initAcc []initAcc
	initAt  []int32 // KeyID -> initAcc index + 1
	echoAcc []echoAcc
	echoAt  []int32 // KeyID -> echoAcc index + 1
	sortBuf []alphaCopy
	recv    []recvBundle
}

// ensure grows every KeyID-indexed array to cover kid.
func (t *ntable) ensure(kid msg.KeyID) {
	n := int(kid) + 1
	if n <= len(t.cellAt) {
		return
	}
	grow := n
	if grow < 2*len(t.cellAt) {
		grow = 2 * len(t.cellAt)
	}
	cellAt := make([]int32, grow)
	copy(cellAt, t.cellAt)
	t.cellAt = cellAt
	seen := make([]uint64, grow)
	copy(seen, t.seen)
	t.seen = seen
	initAt := make([]int32, grow)
	copy(initAt, t.initAt)
	t.initAt = initAt
	echoAt := make([]int32, grow)
	copy(echoAt, t.echoAt)
	t.echoAt = echoAt
}

var tablePool = sync.Pool{New: func() any { return &ntable{keys: msg.NewInterner()} }}

// Broadcaster is the per-process Figure-6 component. Construct with New.
type Broadcaster struct {
	n, t    int
	l       int
	pending []msg.Payload
	tab     *ntable
}

// New returns a broadcaster for n processes with l identifiers and at most
// t restricted Byzantine processes.
func New(n, l, t int) (*Broadcaster, error) {
	if n <= 3*t {
		return nil, ErrResilience
	}
	return newBroadcaster(n, l, t), nil
}

// newBroadcaster builds a broadcaster without the resilience check (the
// fuzz host probes below the bound on purpose).
func newBroadcaster(n, l, t int) *Broadcaster {
	tab := tablePool.Get().(*ntable)
	tab.keys.Reset()
	clear(tab.cells)
	tab.cells = tab.cells[:0]
	for i := range tab.cellAt {
		tab.cellAt[i] = 0
	}
	clear(tab.seen)
	tab.seenGen = 0
	clear(tab.recv)
	tab.recv = tab.recv[:0]
	return &Broadcaster{n: n, t: t, l: l, tab: tab}
}

// Release returns the broadcaster's arena-backed table to the shared
// pool. The broadcaster is unusable afterwards.
func (b *Broadcaster) Release() {
	if b.tab == nil {
		return
	}
	// Drop payload references before pooling so recycled tables retain no
	// garbage from this execution.
	clear(b.tab.cells)
	b.tab.cells = b.tab.cells[:0]
	clear(b.tab.initAcc)
	b.tab.initAcc = b.tab.initAcc[:0]
	for i := range b.tab.echoAcc {
		b.tab.echoAcc[i].body = nil
	}
	b.tab.echoAcc = b.tab.echoAcc[:0]
	clear(b.tab.recv)
	b.tab.recv = b.tab.recv[:0]
	tablePool.Put(b.tab)
	b.tab = nil
}

// Broadcast queues m for initiation at the next init round under the
// host's identifier.
func (b *Broadcaster) Broadcast(m msg.Payload) {
	b.pending = append(b.pending, m)
}

// Outgoing returns the single bundle to broadcast this round, or nil when
// there is nothing to send (empty table and no pending init). Cells are
// scanned in arena (first-sight) order; NewBundle canonicalises.
func (b *Broadcaster) Outgoing(round int) msg.Payload {
	var inits []InitTuple
	if IsInitRound(round) {
		for _, m := range b.pending {
			inits = append(inits, InitTuple{Body: m})
		}
		b.pending = nil
	}
	var echoes []EchoTuple
	for i := range b.tab.cells {
		cell := &b.tab.cells[i]
		if cell.alpha > 0 {
			echoes = append(echoes, EchoTuple{H: cell.h, A: cell.alpha, Body: cell.body, K: cell.k})
		}
	}
	if len(inits) == 0 && len(echoes) == 0 {
		return nil
	}
	return NewBundle(inits, echoes)
}

// validBundle applies the paper's validity rules for a message received at
// the given round: at most one init tuple per (m) (with the init bound to
// the current superround), and at most one echo tuple per (h, m, k) with
// k at most the current superround. Dedup runs on generation stamps over
// the interned tuple keys — no per-round maps. Keys from rejected bundles
// stay interned: memory grows with the number of distinct forged keys,
// which is bounded by bundle size × MaxRounds per execution, and the
// whole table returns to the pool on Release — a deliberate trade against
// allocating fresh validation maps every round.
func (b *Broadcaster) validBundle(bundle *Bundle, round int) bool {
	sr := Superround(round)
	t := b.tab
	t.seenGen++
	gen := t.seenGen
	for _, it := range bundle.Inits {
		if it.Body == nil {
			return false
		}
		kid := t.kb.Reset("i").Nested(it.Body).Intern(t.keys)
		t.ensure(kid)
		if t.seen[kid] == gen {
			return false
		}
		t.seen[kid] = gen
	}
	if len(bundle.Inits) > 0 && !IsInitRound(round) {
		return false
	}
	for _, et := range bundle.Echoes {
		if et.Body == nil || et.A < 0 || et.K < 1 || et.K > sr || !et.H.IsValid(maxIdentifiers) {
			return false
		}
		kid := b.cellKID(et.H, et.Body, et.K)
		if t.seen[kid] == gen {
			return false
		}
		t.seen[kid] = gen
	}
	return true
}

// maxIdentifiers bounds identifier validation inside bundles; actual
// protocol identifiers are validated against l by the host, this guard
// only rejects nonsense.
const maxIdentifiers = 1 << 20

// cellKID interns the canonical a[h, m, k] cell key ("c|h|k|body", built
// in scratch) and returns its dense ID; known cells allocate nothing.
func (b *Broadcaster) cellKID(h hom.Identifier, body msg.Payload, k int) msg.KeyID {
	kid := b.tab.kb.Reset("c").Identifier(h).Int(k).Nested(body).Intern(b.tab.keys)
	b.tab.ensure(kid)
	return kid
}

// cell returns the arena index of the a[h, m, k] cell, creating it on
// first sight.
func (b *Broadcaster) cell(h hom.Identifier, body msg.Payload, k int) int {
	kid := b.cellKID(h, body, k)
	if pos := b.tab.cellAt[kid]; pos != 0 {
		return int(pos) - 1
	}
	b.tab.cells = append(b.tab.cells, entry{h: h, body: body, k: k})
	b.tab.cellAt[kid] = int32(len(b.tab.cells))
	return len(b.tab.cells) - 1
}

// initGroup returns the round's init accumulator for a cell key, creating
// it on first sight (in first-sight order).
func (t *ntable) initGroup(kid msg.KeyID, h hom.Identifier, body msg.Payload) *initAcc {
	if pos := t.initAt[kid]; pos != 0 {
		return &t.initAcc[pos-1]
	}
	t.initAcc = append(t.initAcc, initAcc{kid: kid, h: h, body: body})
	t.initAt[kid] = int32(len(t.initAcc))
	return &t.initAcc[len(t.initAcc)-1]
}

// echoGroup returns the round's echo accumulator for a cell key, creating
// it on first sight. Reused slots keep their support capacity.
func (t *ntable) echoGroup(kid msg.KeyID, h hom.Identifier, body msg.Payload, k int) *echoAcc {
	if pos := t.echoAt[kid]; pos != 0 {
		return &t.echoAcc[pos-1]
	}
	if len(t.echoAcc) < cap(t.echoAcc) {
		t.echoAcc = t.echoAcc[:len(t.echoAcc)+1]
		g := &t.echoAcc[len(t.echoAcc)-1]
		g.support = g.support[:0]
	} else {
		t.echoAcc = append(t.echoAcc, echoAcc{})
	}
	g := &t.echoAcc[len(t.echoAcc)-1]
	g.kid, g.h, g.body, g.k = kid, h, body, k
	t.echoAt[kid] = int32(len(t.echoAcc))
	return g
}

// Ingest processes the round's inbox. Accepts are only performed in the
// second round of each superround (unicity); the returned slice is in
// deterministic (first-sight over the sorted inbox) order.
func (b *Broadcaster) Ingest(round int, in *msg.Inbox) []Accept {
	sr := Superround(round)
	t := b.tab

	// Gather valid bundles with their copy counts, through the indexed
	// accessors (no []Message view; counts come straight from the
	// KeyID-dense array).
	t.recv = t.recv[:0]
	for i, k := 0, in.Len(); i < k; i++ {
		bundle, ok := in.BodyAt(i).(*Bundle)
		if !ok || !b.validBundle(bundle, round) {
			continue
		}
		t.recv = append(t.recv, recvBundle{id: in.SenderAt(i), bundle: bundle, copies: in.CountAt(i)})
	}

	// Lines 13–14: init counting (first round of a superround). α is the
	// total number of valid message copies from identifier h containing
	// (init, h, m, sr).
	if IsInitRound(round) {
		for _, r := range t.recv {
			for _, it := range r.bundle.Inits {
				kid := b.cellKID(r.id, it.Body, sr)
				t.initGroup(kid, r.id, it.Body).count += r.copies
			}
		}
		for i := range t.initAcc {
			acc := &t.initAcc[i]
			if acc.count > 0 {
				b.tab.cells[b.cell(acc.h, acc.body, sr)].alpha = acc.count
			}
			t.initAt[acc.kid] = 0
		}
		clear(t.initAcc)
		t.initAcc = t.initAcc[:0]
	}

	// Lines 15–18: adopt echo estimates supported by n−2t message copies.
	// For each (h, m, k), α1 = max{α : at least n−2t copies carried
	// (echo, h, α′, m, k) with α′ ≥ α}.
	for _, r := range t.recv {
		for _, et := range r.bundle.Echoes {
			kid := b.cellKID(et.H, et.Body, et.K)
			g := t.echoGroup(kid, et.H, et.Body, et.K)
			g.support = append(g.support, alphaCopy{alpha: et.A, copies: r.copies})
		}
	}

	var accepts []Accept
	for i := range t.echoAcc {
		g := &t.echoAcc[i]
		if alpha1, ok := t.thresholdAlpha(g.support, b.n-2*b.t); ok {
			idx := b.cell(g.h, g.body, g.k)
			if alpha1 > t.cells[idx].alpha {
				t.cells[idx].alpha = alpha1
			}
		}
		// Lines 19–21: accept on n−t copies, in the second round of the
		// superround only.
		if !IsInitRound(round) {
			if alpha2, ok := t.thresholdAlpha(g.support, b.n-b.t); ok {
				accepts = append(accepts, Accept{ID: g.h, Alpha: alpha2, Body: g.body, SR: g.k})
			}
		}
		t.echoAt[g.kid] = 0
		g.body = nil
	}
	t.echoAcc = t.echoAcc[:0]
	return accepts
}

// thresholdAlpha returns the largest α such that message copies carrying
// α′ ≥ α number at least need; ok is false when even α = 0 lacks support.
// The support samples are insertion-sorted into a reusable buffer
// (descending α), so the scan allocates nothing in steady state.
func (t *ntable) thresholdAlpha(support []alphaCopy, need int) (int, bool) {
	if need <= 0 {
		need = 1
	}
	buf := t.sortBuf[:0]
	for _, s := range support {
		pos := len(buf)
		for pos > 0 && buf[pos-1].alpha < s.alpha {
			pos--
		}
		buf = append(buf, alphaCopy{})
		copy(buf[pos+1:], buf[pos:])
		buf[pos] = s
	}
	t.sortBuf = buf
	run := 0
	for _, s := range buf {
		run += s.copies
		if run >= need {
			return s.alpha, true
		}
	}
	return 0, false
}

// TableSize reports the number of tracked cells (tests and memory
// accounting).
func (b *Broadcaster) TableSize() int { return len(b.tab.cells) }
