package inject

import (
	"errors"
	"testing"
)

// TestNilInjectorIsInert: every query on a nil injector answers "no
// fault" — engines compile nil schedules to nil injectors and keep the
// fault-free fast path.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Active(1) || in.Down(0, 1) || in.AnyDown(1) || in.Suppress(1, 0, 1) || in.Dup(1, 0, 1) || in.NeedRetain(0, 1) {
		t.Fatal("nil injector reported a fault")
	}
	if got := in.ReplaysInto(1); got != nil {
		t.Fatalf("nil injector replays: %v", got)
	}
	if got := in.Culprits(); got != nil {
		t.Fatalf("nil injector culprits: %v", got)
	}
}

// TestCompileEmpty: nil and empty schedules compile to a nil injector.
func TestCompileEmpty(t *testing.T) {
	for _, s := range []*Schedule{nil, {}} {
		in, err := Compile(s, 4)
		if err != nil || in != nil {
			t.Fatalf("Compile(%v) = %v, %v; want nil, nil", s, in, err)
		}
	}
}

// TestCompileValidation: out-of-range slots, rounds, probabilities and
// replay orderings are rejected with the typed sentinel errors.
func TestCompileValidation(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		want error
	}{
		{"crash slot", Schedule{Crashes: []Crash{{Slot: 4, Round: 1}}}, ErrSlotRange},
		{"crash slot negative", Schedule{Crashes: []Crash{{Slot: -1, Round: 1}}}, ErrSlotRange},
		{"crash round", Schedule{Crashes: []Crash{{Slot: 0, Round: 0}}}, ErrRoundRange},
		{"crash recover", Schedule{Crashes: []Crash{{Slot: 0, Round: 1, Recover: -1}}}, ErrRoundRange},
		{"omission slot", Schedule{Omissions: []Omission{{Slot: 9, Send: true}}}, ErrSlotRange},
		{"omission prob", Schedule{Omissions: []Omission{{Slot: 0, Send: true, Prob: 1.0}}}, ErrProbRange},
		{"duplicate slot", Schedule{Duplicates: []Duplicate{{FromSlot: 0, ToSlot: 4, Round: 1}}}, ErrSlotRange},
		{"duplicate round", Schedule{Duplicates: []Duplicate{{FromSlot: 0, ToSlot: 1, Round: 0}}}, ErrRoundRange},
		{"replay slot", Schedule{Replays: []Replay{{FromSlot: 5, SourceRound: 1, Round: 2, ToSlot: 0}}}, ErrSlotRange},
		{"replay source", Schedule{Replays: []Replay{{FromSlot: 0, SourceRound: 0, Round: 2, ToSlot: 1}}}, ErrRoundRange},
		{"replay order", Schedule{Replays: []Replay{{FromSlot: 0, SourceRound: 3, Round: 3, ToSlot: 1}}}, ErrReplayOrder},
	}
	for _, tc := range cases {
		if _, err := Compile(&tc.s, 4); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestCrashWindows: crash-stop is down forever from its round on;
// crash-recovery is down for exactly Recover rounds.
func TestCrashWindows(t *testing.T) {
	in, err := Compile(&Schedule{Crashes: []Crash{
		{Slot: 0, Round: 3},             // crash-stop
		{Slot: 1, Round: 2, Recover: 2}, // down in rounds 2, 3
	}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 6; round++ {
		wantStop := round >= 3
		wantRec := round == 2 || round == 3
		if got := in.Down(0, round); got != wantStop {
			t.Errorf("round %d: crash-stop Down = %v, want %v", round, got, wantStop)
		}
		if got := in.Down(1, round); got != wantRec {
			t.Errorf("round %d: crash-recovery Down = %v, want %v", round, got, wantRec)
		}
		if got := in.AnyDown(round); got != (wantStop || wantRec) {
			t.Errorf("round %d: AnyDown = %v", round, got)
		}
		if !in.Active(round) {
			t.Errorf("round %d: crash-stop schedule must stay Active forever", round)
		}
	}
	// A down recipient loses every delivery, including self-delivery.
	if !in.Suppress(3, 2, 0) || !in.Suppress(3, 0, 0) {
		t.Error("deliveries to a down slot must be suppressed")
	}
	if in.Suppress(1, 2, 0) {
		t.Error("delivery before the crash round suppressed")
	}
}

// TestActiveBound: a schedule of only bounded faults deactivates after
// the last touched round, re-enabling the engines' fast path.
func TestActiveBound(t *testing.T) {
	in, err := Compile(&Schedule{
		Crashes:    []Crash{{Slot: 0, Round: 2, Recover: 3}}, // last down round 4
		Duplicates: []Duplicate{{FromSlot: 1, ToSlot: 2, Round: 6}},
		Replays:    []Replay{{FromSlot: 1, SourceRound: 2, Round: 5, ToSlot: 3}},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 6; round++ {
		if !in.Active(round) {
			t.Errorf("round %d: want active", round)
		}
	}
	if in.Active(7) {
		t.Error("round 7: bounded schedule still active")
	}
}

// TestOmissionPurity: the probabilistic omission decision is a pure
// function of (round, from, to) — two injectors from the same schedule
// agree on every link — and respects direction and window.
func TestOmissionPurity(t *testing.T) {
	s := &Schedule{Omissions: []Omission{
		{Slot: 1, Send: true, From: 2, Until: 4, Prob: 0.5, Seed: 99},
	}}
	a, err := Compile(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Compile(s, 5)
	lost, kept := 0, 0
	for round := 1; round <= 6; round++ {
		for from := 0; from < 5; from++ {
			for to := 0; to < 5; to++ {
				got := a.Suppress(round, from, to)
				if got != b.Suppress(round, from, to) {
					t.Fatalf("omission decision not pure at (%d,%d,%d)", round, from, to)
				}
				if got {
					lost++
					if from != 1 {
						t.Fatalf("send omission on slot 1 lost a message from %d", from)
					}
					if round < 2 || round > 4 {
						t.Fatalf("omission fired outside its window at round %d", round)
					}
					if from == to {
						t.Fatal("self-delivery lost to an omission")
					}
				} else {
					kept++
				}
			}
		}
	}
	if lost == 0 || kept == 0 {
		t.Fatalf("prob 0.5 omission lost %d and kept %d — want both nonzero", lost, kept)
	}
}

// TestDeterministicOmissionLosesAll: Prob 0 means every link message in
// the window is lost (receive side here).
func TestDeterministicOmissionLosesAll(t *testing.T) {
	in, err := Compile(&Schedule{Omissions: []Omission{{Slot: 2, Receive: true}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 3; round++ {
		for from := 0; from < 4; from++ {
			want := from != 2 // self-delivery exempt
			if got := in.Suppress(round, from, 2); got != want {
				t.Errorf("round %d from %d: Suppress = %v, want %v", round, from, got, want)
			}
		}
		if in.Suppress(round, 2, 3) {
			t.Error("receive omission suppressed an outgoing message")
		}
	}
}

// TestCulpritsSortedDistinct: culprits are the distinct fault-source
// slots in ascending order.
func TestCulpritsSortedDistinct(t *testing.T) {
	s := &Schedule{
		Crashes:    []Crash{{Slot: 3, Round: 1}, {Slot: 1, Round: 2, Recover: 1}},
		Omissions:  []Omission{{Slot: 3, Send: true}},
		Duplicates: []Duplicate{{FromSlot: 0, ToSlot: 2, Round: 1}},
		Replays:    []Replay{{FromSlot: 1, SourceRound: 1, Round: 2, ToSlot: 0}},
	}
	got := s.Culprits()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("culprits = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("culprits = %v, want %v", got, want)
		}
	}
}

// TestDupAndReplayQueries: Dup matches exactly its (round, from, to),
// NeedRetain marks the source round, ReplaysInto preserves schedule
// order.
func TestDupAndReplayQueries(t *testing.T) {
	in, err := Compile(&Schedule{
		Duplicates: []Duplicate{{FromSlot: 1, ToSlot: 2, Round: 3}},
		Replays: []Replay{
			{FromSlot: 0, SourceRound: 2, Round: 5, ToSlot: 3},
			{FromSlot: 2, SourceRound: 1, Round: 5, ToSlot: 0},
			{FromSlot: 0, SourceRound: 3, Round: 6, ToSlot: 1},
		},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Dup(3, 1, 2) || in.Dup(3, 2, 1) || in.Dup(2, 1, 2) {
		t.Error("Dup matched the wrong delivery")
	}
	if !in.NeedRetain(0, 2) || !in.NeedRetain(2, 1) || !in.NeedRetain(0, 3) || in.NeedRetain(0, 1) || in.NeedRetain(3, 2) {
		t.Error("NeedRetain wrong")
	}
	got := in.ReplaysInto(5)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ReplaysInto(5) = %v, want [0 1]", got)
	}
	if got := in.ReplaysInto(4); got != nil {
		t.Fatalf("ReplaysInto(4) = %v, want none", got)
	}
}

// TestSimulable: crash/omission schedules are Byzantine-simulable in
// both models; duplication and replay only in the unrestricted one.
func TestSimulable(t *testing.T) {
	crash := &Schedule{Crashes: []Crash{{Slot: 0, Round: 1}}}
	if ok, _ := crash.Simulable(true); !ok {
		t.Error("crash schedule must be simulable under restricted Byzantine")
	}
	dup := &Schedule{Duplicates: []Duplicate{{FromSlot: 0, ToSlot: 1, Round: 1}}}
	if ok, _ := dup.Simulable(false); !ok {
		t.Error("duplication must be simulable in the unrestricted model")
	}
	if ok, why := dup.Simulable(true); ok {
		t.Errorf("duplication simulable under restricted Byzantine (%s)", why)
	}
	replay := &Schedule{Replays: []Replay{{FromSlot: 0, SourceRound: 1, Round: 2, ToSlot: 1}}}
	if ok, _ := replay.Simulable(true); ok {
		t.Error("replay simulable under restricted Byzantine")
	}
}
