package inject

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// propertySchedule exercises every fault kind at once, with the
// probabilistic omission and delay paths included, so the purity sweep
// below touches every query's hash-derived branch.
func propertySchedule() *Schedule {
	return &Schedule{
		Crashes: []Crash{
			{Slot: 0, Round: 4, Recover: 2},
			{Slot: 3, Round: 6},
		},
		Omissions: []Omission{
			{Slot: 1, Send: true, From: 2, Until: 5, Prob: 0.4, Seed: 7},
			{Slot: 2, Receive: true, From: 1, Until: 3},
		},
		Duplicates: []Duplicate{{FromSlot: 1, ToSlot: 2, Round: 3}},
		Replays: []Replay{
			{FromSlot: 2, SourceRound: 1, Round: 4, ToSlot: 0},
			{FromSlot: 1, SourceRound: 2, Round: 4, ToSlot: 3},
		},
		Delays: []Delay{
			{FromSlot: 0, ToSlot: 2, From: 1, Until: 4, By: 2, Prob: 0.5, Seed: 1},
			{FromSlot: 0, ToSlot: 3, From: 2, Until: 3, By: 1},
			{FromSlot: 1, ToSlot: 3, From: 1, Until: 2}, // By 0: until stabilization
		},
		Reorders: []Reorder{{FromSlot: 2, ToSlot: 1, Round: 2}},
		Stalls:   []Stall{{Slot: 2, Round: 5, Rounds: 2}},
	}
}

// query is one injector probe; answer renders its result as a string so
// probes with different result shapes compare uniformly.
type query struct {
	name            string
	round, from, to int
}

func (q query) answer(in *Injector) string {
	switch q.name {
	case "Down":
		return fmt.Sprint(in.Down(q.from, q.round))
	case "AnyDown":
		return fmt.Sprint(in.AnyDown(q.round))
	case "Suppress":
		return fmt.Sprint(in.Suppress(q.round, q.from, q.to))
	case "Dup":
		return fmt.Sprint(in.Dup(q.round, q.from, q.to))
	case "NeedRetain":
		return fmt.Sprint(in.NeedRetain(q.from, q.round))
	case "ReplaysInto":
		return fmt.Sprint(in.ReplaysInto(q.round))
	case "DelayBy":
		by, held := in.DelayBy(q.round, q.from, q.to)
		return fmt.Sprint(by, held)
	case "Stalled":
		return fmt.Sprint(in.Stalled(q.from, q.round))
	case "Active":
		return fmt.Sprint(in.Active(q.round))
	}
	return "?"
}

// queryGrid enumerates every query over every (round, from, to) in the
// sweep range, in deterministic order.
func queryGrid(n, maxRound int) []query {
	names := []string{"Down", "AnyDown", "Suppress", "Dup", "NeedRetain",
		"ReplaysInto", "DelayBy", "Stalled", "Active"}
	var out []query
	for _, name := range names {
		for round := 1; round <= maxRound; round++ {
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					out = append(out, query{name, round, from, to})
				}
			}
		}
	}
	return out
}

// TestInjectorQueryPurity: every injector query is a pure function of
// its arguments. The sweep asks every question three ways — in grid
// order on one injector, in shuffled order on a second injector
// compiled from the same schedule, and concurrently from several
// goroutines on a third — and all answers must agree. This is the
// contract that keeps both delivery modes, both reception modes and
// any worker count byte-identical under injected faults.
func TestInjectorQueryPurity(t *testing.T) {
	const n, maxRound = 4, 8
	s := propertySchedule()
	grid := queryGrid(n, maxRound)

	base, err := Compile(s, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(grid))
	for i, q := range grid {
		want[i] = q.answer(base)
	}

	// Shuffled order on a fresh injector: answers must not depend on
	// query history.
	shuffled, err := Compile(s, n)
	if err != nil {
		t.Fatal(err)
	}
	order := rand.New(rand.NewSource(1)).Perm(len(grid))
	for _, i := range order {
		if got := grid[i].answer(shuffled); got != want[i] {
			t.Fatalf("%s(%d,%d,%d) shuffled = %s, want %s",
				grid[i].name, grid[i].round, grid[i].from, grid[i].to, got, want[i])
		}
	}

	// Concurrent workers on one shared injector: queries are read-only
	// and race-free, and the partition of the grid is irrelevant.
	for _, workers := range []int{2, 5} {
		shared, err := Compile(s, n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(grid))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(grid); i += workers {
					got[i] = grid[i].answer(shared)
				}
			}(w)
		}
		wg.Wait()
		for i := range grid {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: %s(%d,%d,%d) = %s, want %s", workers,
					grid[i].name, grid[i].round, grid[i].from, grid[i].to, got[i], want[i])
			}
		}
	}

	// The probabilistic paths must actually split: the 0.4 omission and
	// the 0.5 delay should lose/hold some deliveries and pass others
	// inside their windows.
	lost, kept, held, passed := 0, 0, 0, 0
	for round := 2; round <= 5; round++ {
		for to := 0; to < n; to++ {
			if to == 1 {
				continue
			}
			if base.Suppress(round, 1, to) {
				lost++
			} else if !base.Down(to, round) {
				kept++
			}
		}
	}
	for round := 1; round <= 4; round++ {
		if _, h := base.DelayBy(round, 0, 2); h {
			held++
		} else {
			passed++
		}
	}
	if lost == 0 || kept == 0 {
		t.Fatalf("probabilistic omission lost %d kept %d — want both nonzero", lost, kept)
	}
	if held == 0 || passed == 0 {
		t.Fatalf("probabilistic delay held %d passed %d — want both nonzero", held, passed)
	}
}

// TestDelayByWindowPaths pins DelayBy's resolution rules: the window
// gates the send round, until-stabilization (By 0) dominates any
// bounded delay, otherwise the largest By wins, and a reorder is a
// one-round hold that never lowers a bigger delay.
func TestDelayByWindowPaths(t *testing.T) {
	in, err := Compile(&Schedule{
		Delays: []Delay{
			{FromSlot: 0, ToSlot: 1, From: 2, Until: 3, By: 2},
			{FromSlot: 0, ToSlot: 1, From: 3, Until: 3, By: 5},
			{FromSlot: 2, ToSlot: 3, From: 1, Until: 2}, // until stabilization
			{FromSlot: 2, ToSlot: 3, From: 1, Until: 4, By: 3},
		},
		Reorders: []Reorder{
			{FromSlot: 4, ToSlot: 0, Round: 2},
			{FromSlot: 0, ToSlot: 1, Round: 3},
		},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, held := in.DelayBy(1, 0, 1); held {
		t.Fatal("delay fired before its window")
	}
	if by, held := in.DelayBy(2, 0, 1); !held || by != 2 {
		t.Fatalf("round 2: by=%d held=%v, want 2 true", by, held)
	}
	// Round 3: both bounded delays and the reorder overlap; largest By wins.
	if by, held := in.DelayBy(3, 0, 1); !held || by != 5 {
		t.Fatalf("round 3: by=%d held=%v, want 5 true", by, held)
	}
	if _, held := in.DelayBy(4, 0, 1); held {
		t.Fatal("delay fired after its window")
	}
	// Until-stabilization dominates the overlapping By 3 delay.
	if by, held := in.DelayBy(2, 2, 3); !held || by != 0 {
		t.Fatalf("stabilization hold: by=%d held=%v, want 0 true", by, held)
	}
	// Outside the stabilization window the bounded delay resurfaces.
	if by, held := in.DelayBy(3, 2, 3); !held || by != 3 {
		t.Fatalf("post-stabilization round: by=%d held=%v, want 3 true", by, held)
	}
	// A bare reorder is a one-round hold.
	if by, held := in.DelayBy(2, 4, 0); !held || by != 1 {
		t.Fatalf("reorder: by=%d held=%v, want 1 true", by, held)
	}
	if _, held := in.DelayBy(1, 4, 0); held {
		t.Fatal("reorder fired in the wrong round")
	}
}

// TestStalledWindows pins the stall query's window arithmetic and the
// timing flags that route schedules to a timing-capable model.
func TestStalledWindows(t *testing.T) {
	s := &Schedule{Stalls: []Stall{{Slot: 1, Round: 3, Rounds: 2}}}
	in, err := Compile(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 6; round++ {
		want := round == 3 || round == 4
		if got := in.Stalled(1, round); got != want {
			t.Errorf("round %d: Stalled = %v, want %v", round, got, want)
		}
		if in.Stalled(0, round) {
			t.Errorf("round %d: unstalled slot reported stalled", round)
		}
	}
	if !in.HasTiming() || !s.HasTiming() {
		t.Fatal("stall schedule must report timing faults")
	}
	if in.Active(5) != true || in.Active(6) {
		t.Fatal("stall bound wrong: want active through round 5 only")
	}
	if ok, _ := s.Simulable(true); ok {
		t.Fatal("timing faults simulable under restricted Byzantine")
	}
	if ok, _ := s.Simulable(false); !ok {
		t.Fatal("timing faults must be simulable in the unrestricted model")
	}
}
