// Package inject is a deterministic fault-injection layer for the
// simulation engines: it extends the model's fault surface beyond
// Byzantine behaviors (package adversary) and pre-GST link drops to the
// process and link faults the crash-failure literature treats as primary
// — crash-stop, crash-recovery, send/receive omission, message
// duplication and stale replay — plus the timing faults of the
// eventually-synchronous model: per-link message delay and reorder, and
// per-process round-clock stalls (skew).
//
// A Schedule is a declarative, JSON-serialisable list of faults. The
// engines compile it once per execution (Compile) into an Injector whose
// queries are pure functions of (round, from, to): the same schedule
// produces the same suppressed, duplicated and replayed deliveries under
// both delivery modes, both reception modes and both engines, which is
// what lets the delivery-parity corpus extend over injected faults.
//
// The faults compose freely with an adversary.Composite: Byzantine slots
// are chosen by the adversary as before, and injected faults apply to
// the remaining (correct) slots. Crash and omission faults are
// Byzantine-simulable — a Byzantine process may fall silent, resume with
// stale state, or selectively omit sends — so a protocol that claims
// correctness under t Byzantine faults must keep its claims as long as
// the Byzantine slots plus the fault culprits stay within t. Duplication
// and replay are link faults; under the restricted-Byzantine model
// (one message per recipient per round) they exceed what any Byzantine
// sender could produce, so they void claims there (the fuzzer encodes
// exactly this rule).
package inject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Crash takes a correct slot down at the start of Round: while down, the
// process neither prepares sends nor receives messages, and everything
// addressed to it is lost. Recover > 0 brings it back after that many
// down rounds — it rejoins with its pre-crash protocol state at the
// current round number (the crash-recovery model with stable storage);
// Recover == 0 is crash-stop.
type Crash struct {
	Slot    int `json:"slot"`
	Round   int `json:"round"`
	Recover int `json:"recover,omitempty"`
}

// down reports whether the crash keeps the slot down in the given round.
func (c Crash) down(round int) bool {
	if round < c.Round {
		return false
	}
	return c.Recover == 0 || round < c.Round+c.Recover
}

// Omission makes a correct slot lose messages on its own links: Send
// omits what it sends, Receive omits what it is sent (self-deliveries
// are exempt, like adversarial drops — a process cannot lose a message
// to itself). The fault is active in rounds [From, Until] (Until == 0
// means forever). Prob in (0, 1) loses each link message independently
// with that probability, hash-derived from Seed so the decision is a
// pure function of (round, from, to); Prob outside (0, 1) loses every
// message.
type Omission struct {
	Slot    int     `json:"slot"`
	Send    bool    `json:"send,omitempty"`
	Receive bool    `json:"receive,omitempty"`
	From    int     `json:"from,omitempty"`
	Until   int     `json:"until,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// active reports whether the omission window covers the round.
func (o Omission) active(round int) bool {
	from := o.From
	if from < 1 {
		from = 1
	}
	return round >= from && (o.Until == 0 || round <= o.Until)
}

// loses reports whether this omission loses the (round, from, to)
// delivery. Pure in its arguments — the same discipline as
// adversary.RandomDrops — so batched and per-message routing agree.
func (o Omission) loses(round, from, to int) bool {
	if !o.active(round) || from == to {
		return false
	}
	if !(o.Send && o.Slot == from) && !(o.Receive && o.Slot == to) {
		return false
	}
	if o.Prob <= 0 || o.Prob >= 1 {
		return true
	}
	h := int64(round)*1_000_003 + int64(from)*10_007 + int64(to)
	rng := rand.New(rand.NewSource(o.Seed ^ h))
	return rng.Float64() < o.Prob
}

// Duplicate delivers the message from FromSlot to ToSlot twice in the
// given round (both copies adjacent, same payload, same identifier) — a
// link-level duplication fault. Against numerate receivers the second
// copy inflates multiplicity counts beyond what the restricted model
// allows any sender.
type Duplicate struct {
	FromSlot int `json:"from_slot"`
	ToSlot   int `json:"to_slot"`
	Round    int `json:"round"`
}

// Replay re-delivers, in round Round, the messages FromSlot sent in
// SourceRound to ToSlot — a stale message surfacing late, stamped with
// FromSlot's true identifier (links cannot forge). Round must be after
// SourceRound.
type Replay struct {
	FromSlot    int `json:"from_slot"`
	SourceRound int `json:"source_round"`
	Round       int `json:"round"`
	ToSlot      int `json:"to_slot"`
}

// Delay is a timing fault on the FromSlot -> ToSlot link: messages sent
// in rounds [From, Until] (Until == 0 means forever) are held in the
// engine's pending queue and delivered By rounds late. By == 0 means
// "held until stabilization" — the eventually-synchronous time model
// delivers such messages at GST plus its delay bound. The model also
// clamps every delay so that messages sent at or after GST arrive
// within the bound (that is the "eventually synchronous" guarantee);
// schedules only choose behavior inside the window the model allows.
// Prob in (0, 1) delays each link message independently with that
// probability, hash-derived from Seed so the decision is a pure
// function of (round, from, to); Prob outside (0, 1) delays every
// message in the window. Timing faults require a timing-capable time
// model (engine.EventuallySynchronous); the lockstep model rejects
// them at construction.
type Delay struct {
	FromSlot int     `json:"from_slot"`
	ToSlot   int     `json:"to_slot"`
	From     int     `json:"from,omitempty"`
	Until    int     `json:"until,omitempty"`
	By       int     `json:"by,omitempty"`
	Prob     float64 `json:"prob,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// active reports whether the delay window covers the send round.
func (d Delay) active(round int) bool {
	from := d.From
	if from < 1 {
		from = 1
	}
	return round >= from && (d.Until == 0 || round <= d.Until)
}

// holds reports whether this delay holds the (round, from, to)
// delivery. Pure in its arguments, same hash discipline as Omission.
func (d Delay) holds(round, from, to int) bool {
	if !d.active(round) || from == to {
		return false
	}
	if d.FromSlot != from || d.ToSlot != to {
		return false
	}
	if d.Prob <= 0 || d.Prob >= 1 {
		return true
	}
	h := int64(round)*1_000_003 + int64(from)*10_007 + int64(to)
	rng := rand.New(rand.NewSource(d.Seed ^ h))
	return rng.Float64() < d.Prob
}

// Reorder is a one-round overtake on the FromSlot -> ToSlot link: the
// messages sent in the given round are held and delivered after the
// next round's fresh traffic, so newer messages overtake older ones.
// Equivalent to a Delay with By == 1 covering a single round; kept as
// its own kind so schedules (and the fuzzer's shrinker) can express
// plain reordering without touching delay windows.
type Reorder struct {
	FromSlot int `json:"from_slot"`
	ToSlot   int `json:"to_slot"`
	Round    int `json:"round"`
}

// Stall freezes a correct slot's round clock for Rounds rounds starting
// at Round — the per-process skew of the eventually-synchronous model.
// While stalled the process takes no step (it neither prepares sends
// nor receives), but unlike a crash its inbound messages are not lost:
// the engine holds them and delivers them when the slot wakes. The
// model clamps every stall to end by GST (bounded skew after
// stabilization).
type Stall struct {
	Slot   int `json:"slot"`
	Round  int `json:"round"`
	Rounds int `json:"rounds"`
}

// covers reports whether the stall freezes the slot in the given round.
func (s Stall) covers(round int) bool {
	return round >= s.Round && round < s.Round+s.Rounds
}

// Schedule is a declarative fault schedule: the JSON form is embedded in
// fuzz scenarios and regression seeds. The zero value (and nil) injects
// nothing.
type Schedule struct {
	Crashes    []Crash     `json:"crashes,omitempty"`
	Omissions  []Omission  `json:"omissions,omitempty"`
	Duplicates []Duplicate `json:"duplicates,omitempty"`
	Replays    []Replay    `json:"replays,omitempty"`
	Delays     []Delay     `json:"delays,omitempty"`
	Reorders   []Reorder   `json:"reorders,omitempty"`
	Stalls     []Stall     `json:"stalls,omitempty"`
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return s == nil ||
		len(s.Crashes) == 0 && len(s.Omissions) == 0 &&
			len(s.Duplicates) == 0 && len(s.Replays) == 0 &&
			!s.HasTiming()
}

// HasTiming reports whether the schedule contains timing faults
// (delays, reorders or stalls), which require a timing-capable time
// model.
func (s *Schedule) HasTiming() bool {
	return s != nil &&
		(len(s.Delays) > 0 || len(s.Reorders) > 0 || len(s.Stalls) > 0)
}

// Culprits returns the sorted distinct slots named as a fault source by
// the schedule: crashed and omitting slots, and the senders whose
// messages are duplicated or replayed (their identifier's traffic is no
// longer what the holders produced). Harnesses treat culprits like
// Byzantine slots when deciding whether a protocol's claims survive the
// schedule.
func (s *Schedule) Culprits() []int {
	if s == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, c := range s.Crashes {
		seen[c.Slot] = true
	}
	for _, o := range s.Omissions {
		seen[o.Slot] = true
	}
	for _, d := range s.Duplicates {
		seen[d.FromSlot] = true
	}
	for _, r := range s.Replays {
		seen[r.FromSlot] = true
	}
	for _, d := range s.Delays {
		seen[d.FromSlot] = true
	}
	for _, r := range s.Reorders {
		seen[r.FromSlot] = true
	}
	for _, st := range s.Stalls {
		seen[st.Slot] = true
	}
	out := make([]int, 0, len(seen))
	for slot := range seen {
		out = append(out, slot)
	}
	sort.Ints(out)
	return out
}

// Validation errors.
var (
	ErrSlotRange   = errors.New("inject: fault slot out of range")
	ErrRoundRange  = errors.New("inject: fault round must be >= 1")
	ErrProbRange   = errors.New("inject: omission probability must be in [0, 1)")
	ErrReplayOrder = errors.New("inject: replay round must be after its source round")
)

// Injector is a compiled schedule: every query is a pure function of its
// arguments, so the two delivery modes, the two reception modes and the
// two engines observe identical faults. A nil *Injector injects nothing
// and every method is safe to call on it.
type Injector struct {
	sched    Schedule
	n        int
	culprits []int
	// maxRound is the last round any bounded fault touches; 0 when some
	// fault is unbounded (a crash-stop or an open omission window).
	maxRound int
}

// Compile validates the schedule against the execution's slot count and
// returns its injector. A nil or empty schedule compiles to a nil
// injector.
func Compile(s *Schedule, n int) (*Injector, error) {
	if s.Empty() {
		return nil, nil
	}
	in := &Injector{sched: *s, n: n, culprits: s.Culprits()}
	bound := func(round int) {
		if in.maxRound >= 0 && round > in.maxRound {
			in.maxRound = round
		}
	}
	for _, c := range s.Crashes {
		if c.Slot < 0 || c.Slot >= n {
			return nil, fmt.Errorf("%w (crash slot %d, n=%d)", ErrSlotRange, c.Slot, n)
		}
		if c.Round < 1 || c.Recover < 0 {
			return nil, fmt.Errorf("%w (crash at round %d, recover %d)", ErrRoundRange, c.Round, c.Recover)
		}
		if c.Recover == 0 {
			in.maxRound = -1
		} else {
			bound(c.Round + c.Recover)
		}
	}
	for _, o := range s.Omissions {
		if o.Slot < 0 || o.Slot >= n {
			return nil, fmt.Errorf("%w (omission slot %d, n=%d)", ErrSlotRange, o.Slot, n)
		}
		if o.Prob < 0 || o.Prob >= 1 {
			return nil, fmt.Errorf("%w (prob %v)", ErrProbRange, o.Prob)
		}
		if o.Until == 0 {
			in.maxRound = -1
		} else {
			bound(o.Until)
		}
	}
	for _, d := range s.Duplicates {
		if d.FromSlot < 0 || d.FromSlot >= n || d.ToSlot < 0 || d.ToSlot >= n {
			return nil, fmt.Errorf("%w (duplicate %d->%d, n=%d)", ErrSlotRange, d.FromSlot, d.ToSlot, n)
		}
		if d.Round < 1 {
			return nil, fmt.Errorf("%w (duplicate at round %d)", ErrRoundRange, d.Round)
		}
		bound(d.Round)
	}
	for _, r := range s.Replays {
		if r.FromSlot < 0 || r.FromSlot >= n || r.ToSlot < 0 || r.ToSlot >= n {
			return nil, fmt.Errorf("%w (replay %d->%d, n=%d)", ErrSlotRange, r.FromSlot, r.ToSlot, n)
		}
		if r.SourceRound < 1 {
			return nil, fmt.Errorf("%w (replay source round %d)", ErrRoundRange, r.SourceRound)
		}
		if r.Round <= r.SourceRound {
			return nil, fmt.Errorf("%w (source %d, replay %d)", ErrReplayOrder, r.SourceRound, r.Round)
		}
		bound(r.Round)
	}
	for _, d := range s.Delays {
		if d.FromSlot < 0 || d.FromSlot >= n || d.ToSlot < 0 || d.ToSlot >= n {
			return nil, fmt.Errorf("%w (delay %d->%d, n=%d)", ErrSlotRange, d.FromSlot, d.ToSlot, n)
		}
		if d.By < 0 || d.From < 0 || d.Until < 0 {
			return nil, fmt.Errorf("%w (delay by %d, window [%d, %d])", ErrRoundRange, d.By, d.From, d.Until)
		}
		if d.Prob < 0 || d.Prob >= 1 {
			return nil, fmt.Errorf("%w (delay prob %v)", ErrProbRange, d.Prob)
		}
		if d.Until == 0 || d.By == 0 {
			// Open window, or held-until-stabilization: the due round
			// depends on the execution's GST, unknown here.
			in.maxRound = -1
		} else {
			bound(d.Until + d.By)
		}
	}
	for _, r := range s.Reorders {
		if r.FromSlot < 0 || r.FromSlot >= n || r.ToSlot < 0 || r.ToSlot >= n {
			return nil, fmt.Errorf("%w (reorder %d->%d, n=%d)", ErrSlotRange, r.FromSlot, r.ToSlot, n)
		}
		if r.Round < 1 {
			return nil, fmt.Errorf("%w (reorder at round %d)", ErrRoundRange, r.Round)
		}
		bound(r.Round + 1)
	}
	for _, st := range s.Stalls {
		if st.Slot < 0 || st.Slot >= n {
			return nil, fmt.Errorf("%w (stall slot %d, n=%d)", ErrSlotRange, st.Slot, n)
		}
		if st.Round < 1 || st.Rounds < 1 {
			return nil, fmt.Errorf("%w (stall at round %d for %d rounds)", ErrRoundRange, st.Round, st.Rounds)
		}
		// Held inbound mail wakes no later than the stall's end; the
		// GST clamp can only move the wake earlier.
		bound(st.Round + st.Rounds)
	}
	return in, nil
}

// Schedule returns a copy of the compiled schedule.
func (in *Injector) Schedule() Schedule {
	if in == nil {
		return Schedule{}
	}
	return in.sched
}

// Culprits returns the schedule's sorted fault-source slots (see
// Schedule.Culprits).
func (in *Injector) Culprits() []int {
	if in == nil {
		return nil
	}
	return in.culprits
}

// Active reports whether any fault can touch the given round. Engines
// use it to keep fault-free rounds on the unchanged fast path (in
// particular the group-shared reception's trivial-mask sharing).
func (in *Injector) Active(round int) bool {
	if in == nil {
		return false
	}
	return in.maxRound < 0 || round <= in.maxRound
}

// Down reports whether the slot is crashed in the given round.
func (in *Injector) Down(slot, round int) bool {
	if in == nil {
		return false
	}
	for _, c := range in.sched.Crashes {
		if c.Slot == slot && c.down(round) {
			return true
		}
	}
	return false
}

// AnyDown reports whether any slot is crashed in the given round.
func (in *Injector) AnyDown(round int) bool {
	if in == nil {
		return false
	}
	for _, c := range in.sched.Crashes {
		if c.down(round) {
			return true
		}
	}
	return false
}

// Suppress reports whether the (round, from, to) delivery is lost to a
// fault: the recipient is down, or a send/receive omission on either
// endpoint loses it. Pure in its arguments.
func (in *Injector) Suppress(round, from, to int) bool {
	if in == nil {
		return false
	}
	if in.Down(to, round) {
		return true
	}
	for _, o := range in.sched.Omissions {
		if o.loses(round, from, to) {
			return true
		}
	}
	return false
}

// Dup reports whether the (round, from, to) delivery is duplicated.
// Pure in its arguments.
func (in *Injector) Dup(round, from, to int) bool {
	if in == nil {
		return false
	}
	for _, d := range in.sched.Duplicates {
		if d.Round == round && d.FromSlot == from && d.ToSlot == to {
			return true
		}
	}
	return false
}

// NeedRetain reports whether some replay needs the sends of the given
// slot in the given round retained for later re-delivery.
func (in *Injector) NeedRetain(slot, round int) bool {
	if in == nil {
		return false
	}
	for _, r := range in.sched.Replays {
		if r.FromSlot == slot && r.SourceRound == round {
			return true
		}
	}
	return false
}

// ReplaysInto returns the indices (into Schedule().Replays) of the
// replays that deliver into the given round, in their schedule order —
// deterministic, so both delivery modes stamp replayed messages
// identically.
func (in *Injector) ReplaysInto(round int) []int {
	if in == nil {
		return nil
	}
	var out []int
	for i, r := range in.sched.Replays {
		if r.Round == round {
			out = append(out, i)
		}
	}
	return out
}

// HasTiming reports whether the compiled schedule contains timing
// faults (see Schedule.HasTiming).
func (in *Injector) HasTiming() bool {
	if in == nil {
		return false
	}
	return in.sched.HasTiming()
}

// DelayBy reports whether a delay or reorder fault holds the
// (round, from, to) delivery at its send round, and by how many rounds.
// held with by == 0 means "until stabilization" — the time model
// resolves it to GST plus its delay bound. When several faults match,
// until-stabilization dominates, otherwise the largest By wins. Pure in
// its arguments.
func (in *Injector) DelayBy(round, from, to int) (by int, held bool) {
	if in == nil {
		return 0, false
	}
	for _, d := range in.sched.Delays {
		if d.holds(round, from, to) {
			held = true
			if d.By <= 0 {
				return 0, true
			}
			if d.By > by {
				by = d.By
			}
		}
	}
	for _, r := range in.sched.Reorders {
		if r.Round == round && r.FromSlot == from && r.ToSlot == to && from != to {
			held = true
			if by < 1 {
				by = 1
			}
		}
	}
	return by, held
}

// Stalled reports whether a stall freezes the slot's round clock in the
// given round, before the model's GST clamp (the engine enforces that
// stalls end by GST). Pure in its arguments.
func (in *Injector) Stalled(slot, round int) bool {
	if in == nil {
		return false
	}
	for _, s := range in.sched.Stalls {
		if s.Slot == slot && s.covers(round) {
			return true
		}
	}
	return false
}

// Simulable reports whether the schedule stays within what a Byzantine
// adversary could have produced by corrupting the culprit slots:
// crashes and omissions always are; duplication and replay exceed the
// restricted-Byzantine per-round budget, so they are simulable only in
// the unrestricted model. Timing faults (delay, reorder, stall) make a
// held message surface alongside the culprit's fresh same-round
// traffic, which likewise exceeds the restricted
// one-message-per-recipient-per-round budget; in the unrestricted
// model a Byzantine culprit may send anything at any time, so they are
// simulable there. The reason names the first obstruction.
func (s *Schedule) Simulable(restricted bool) (bool, string) {
	if s.Empty() {
		return true, "no faults"
	}
	if restricted && (len(s.Duplicates) > 0 || len(s.Replays) > 0) {
		return false, "duplication/replay exceeds the restricted one-message-per-recipient-per-round budget"
	}
	if restricted && s.HasTiming() {
		return false, "delayed deliveries alongside fresh traffic exceed the restricted one-message-per-recipient-per-round budget"
	}
	if s.HasTiming() {
		return true, "timing faults are Byzantine-simulable by corrupting the culprit slots (late or withheld sends)"
	}
	return true, "crash/omission faults are Byzantine-simulable by corrupting the culprit slots"
}
