package chaos

import (
	"math/rand"
	"testing"

	"homonyms/internal/fuzz"
)

// TestSoakDeterministicAcrossWorkers pins the soak's core promise: the
// report — digest and rendered text — is byte-identical across worker
// counts, even though every composition exercises held deliveries,
// retransmission and budget stops.
func TestSoakDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Seed: 20260807, Count: 40, Gen: fuzz.GenOptions{MaxN: 6}, Invariants: true}
	cfg.Workers = 1
	r1, err := Soak(cfg)
	if err != nil {
		t.Fatalf("soak w1: %v", err)
	}
	cfg.Workers = 4
	r4, err := Soak(cfg)
	if err != nil {
		t.Fatalf("soak w4: %v", err)
	}
	if r1.Digest != r4.Digest {
		t.Fatalf("soak digest differs across worker counts: w1=%s w4=%s", r1.Digest, r4.Digest)
	}
	if r1.Format() != r4.Format() {
		t.Fatalf("soak report differs across worker counts:\n--- w1 ---\n%s--- w4 ---\n%s", r1.Format(), r4.Format())
	}
}

// TestSoakCleanUnderInvariants is the smoke soak: a seeded batch with
// paranoid invariants must finish with no real violations, no panics and
// no harness errors — and must actually exercise the timing machinery.
func TestSoakCleanUnderInvariants(t *testing.T) {
	rep, err := Soak(Config{Seed: 7, Count: 60, Gen: fuzz.GenOptions{MaxN: 7}, Invariants: true})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("soak not clean:\n%s", rep.Format())
	}
	if rep.Timed != rep.Count {
		t.Errorf("every chaos composition must carry timing faults, got %d/%d", rep.Timed, rep.Count)
	}
}

// TestChaosifyAlwaysTimes pins the overlay invariants: esync model,
// non-nil schedule with at least one timing fault, knobs in range.
func TestChaosifyAlwaysTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		sc := Chaosify(rng, fuzz.Generate(rng, fuzz.GenOptions{MaxN: 8}))
		if sc.TimeModel != "esync" {
			t.Fatalf("composition %d: time model %q", i, sc.TimeModel)
		}
		if !sc.Faults.HasTiming() {
			t.Fatalf("composition %d: no timing faults", i)
		}
		if sc.Bound < 0 || sc.Timeout < 0 || sc.MaxAttempts < 0 || sc.MaxSends < 0 {
			t.Fatalf("composition %d: knob out of range: %+v", i, sc)
		}
	}
}
