// Package chaos is the soak harness for the eventually-synchronous time
// model: it composes the scenario fuzzer's protocol/adversary sampling
// with much heavier timing-fault schedules — link delays held across
// GST, probabilistic delay windows, round-clock stalls, reorders,
// retransmission under tight message budgets — and runs every
// composition under the engines' paranoid invariant checks with panic
// isolation (fuzz.RunOpts wraps each execution in exec.Protect).
//
// Like a fuzz campaign, a soak is a pure function of its seed: scenario
// i derives from (seed, i), the fan-out runs on exec.MapN, and the
// report digest folds outcome digests in index order — byte-identical
// across runs and worker counts. Unlike a fuzz campaign, every scenario
// runs under the esync time model; the harness's job is not finding
// protocol counterexamples but shaking the timing machinery: a real
// violation, an invariant failure or a panic is a harness/engine bug
// and fails the soak.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"homonyms/internal/exec"
	"homonyms/internal/fuzz"
	"homonyms/internal/inject"
)

// Config parameterises one soak.
type Config struct {
	// Seed determines every scenario of the soak.
	Seed int64
	// Count is the number of compositions to run.
	Count int
	// Workers bounds the worker pool; 0 selects exec.Workers(). The
	// report is byte-identical for every worker count.
	Workers int
	// Gen bounds the underlying scenario sampling space.
	Gen fuzz.GenOptions
	// Invariants runs every composition with the engines' per-round
	// internal checks — the soak's reason to exist; cmd/chaos defaults
	// it on.
	Invariants bool
}

// Report summarises a soak.
type Report struct {
	Seed    int64 `json:"seed"`
	Count   int   `json:"count"`
	Workers int   `json:"workers"`
	// ByClass counts outcomes per fuzz classification.
	ByClass map[fuzz.Class]int `json:"by_class"`
	// Stops counts budget stops per reason — the soak deliberately
	// squeezes message budgets, so a healthy report shows some
	// "message-budget" entries (graceful degradation, not livelock).
	Stops map[string]int `json:"stops,omitempty"`
	// Timed counts scenarios that carried at least one timing fault.
	Timed int `json:"timed"`
	// Real holds every real violation; Panics every caught panic. Either
	// being non-empty fails the soak.
	Real   []*fuzz.Outcome `json:"real,omitempty"`
	Panics []*fuzz.Outcome `json:"panics,omitempty"`
	// Errors holds the first few harness errors verbatim (an invariant
	// failure surfaces here).
	Errors []string `json:"errors,omitempty"`
	// Digest folds every outcome digest in index order.
	Digest string `json:"digest"`
}

// OK reports whether the soak passed: no real violations, no panics, no
// harness errors.
func (r *Report) OK() bool {
	return len(r.Real) == 0 && len(r.Panics) == 0 && len(r.Errors) == 0
}

// subSeed derives the i-th scenario seed with a splitmix64 step (the
// same derivation the fuzzer uses, under a different golden offset so a
// soak and a campaign on the same seed explore different scenarios).
func subSeed(seed int64, i int) int64 {
	x := (uint64(seed) ^ 0xc2b2ae3d27d4eb4f) + 0x9e3779b97f4a7c15*uint64(i+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Chaosify overlays the timing dimension onto a generated scenario: the
// esync time model with drawn knobs, a delay/reorder/stall schedule
// sampled much denser than the fuzzer's, and — one composition in four —
// a message budget tight enough that sustained retransmission runs into
// it. The overlay draws only from rng, so a composition is a pure
// function of (scenario, rng state).
func Chaosify(rng *rand.Rand, sc fuzz.Scenario) fuzz.Scenario {
	sc.TimeModel = "esync"
	sc.Bound = rng.Intn(4)
	if rng.Intn(4) > 0 { // retransmission on three compositions in four
		sc.Timeout = 1 + rng.Intn(3)
		if rng.Intn(3) == 0 {
			sc.MaxAttempts = 1 + rng.Intn(4)
		}
	}

	var f inject.Schedule
	if sc.Faults != nil {
		f = *sc.Faults
	}
	n := sc.N
	// Dense link delays: up to three windows, a third of them held until
	// stabilisation (By 0), a third probabilistic.
	k := 1 + rng.Intn(3)
	for i := 0; i < k; i++ {
		d := inject.Delay{FromSlot: rng.Intn(n), ToSlot: rng.Intn(n), From: 1 + rng.Intn(6)}
		if rng.Intn(3) > 0 {
			d.By = 1 + rng.Intn(5)
		}
		if rng.Intn(2) == 0 {
			d.Until = d.From + rng.Intn(8)
		}
		if rng.Intn(3) == 0 {
			d.Prob = 0.2 + 0.7*rng.Float64()
			d.Seed = rng.Int63()
		}
		f.Delays = append(f.Delays, d)
	}
	if rng.Intn(2) == 0 {
		f.Reorders = append(f.Reorders, inject.Reorder{
			FromSlot: rng.Intn(n), ToSlot: rng.Intn(n), Round: 1 + rng.Intn(8),
		})
	}
	if rng.Intn(2) == 0 {
		f.Stalls = append(f.Stalls, inject.Stall{
			Slot: rng.Intn(n), Round: 1 + rng.Intn(6), Rounds: 1 + rng.Intn(4),
		})
	}
	sc.Faults = &f

	if rng.Intn(4) == 0 {
		// Budget squeeze: a few rounds' worth of sends, so sustained
		// delay plus retransmission degrades into a structured stop.
		sc.MaxSends = sc.N * (2 + rng.Intn(6))
	}
	return sc
}

// Soak runs cfg.Count chaos compositions across the worker pool and
// aggregates a deterministic report.
func Soak(cfg Config) (*Report, error) {
	if cfg.Count <= 0 {
		cfg.Count = 1
	}
	opts := fuzz.Options{Invariants: cfg.Invariants}
	outs, err := exec.MapN(cfg.Count, cfg.Workers, func(i int) (*fuzz.Outcome, error) {
		rng := rand.New(rand.NewSource(subSeed(cfg.Seed, i)))
		sc := Chaosify(rng, fuzz.Generate(rng, cfg.Gen))
		return fuzz.RunOpts(sc, opts), nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Seed:    cfg.Seed,
		Count:   cfg.Count,
		Workers: cfg.Workers,
		ByClass: map[fuzz.Class]int{},
		Stops:   map[string]int{},
	}
	h := fnv.New64a()
	for i, o := range outs {
		rep.ByClass[o.Class]++
		fmt.Fprintf(h, "%d:%s;", i, o.Digest)
		if o.Stopped != "" {
			rep.Stops[o.Stopped]++
		}
		if o.Scenario.Faults.HasTiming() {
			rep.Timed++
		}
		switch o.Class {
		case fuzz.ClassViolation:
			rep.Real = append(rep.Real, o)
		case fuzz.ClassPanic:
			rep.Panics = append(rep.Panics, o)
		case fuzz.ClassError:
			if len(rep.Errors) < 10 {
				rep.Errors = append(rep.Errors, fmt.Sprintf("scenario %d: %s", i, o.Detail))
			}
		}
	}
	rep.Digest = fmt.Sprintf("%016x", h.Sum64())
	return rep, nil
}

// Format renders the report as stable text: two runs agree exactly on
// this string.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos soak seed=%d count=%d timed=%d digest=%s\n", r.Seed, r.Count, r.Timed, r.Digest)
	classes := make([]string, 0, len(r.ByClass))
	for c := range r.ByClass {
		classes = append(classes, string(c))
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(&b, "  %-20s %d\n", c, r.ByClass[fuzz.Class(c)])
	}
	stops := make([]string, 0, len(r.Stops))
	for s := range r.Stops {
		stops = append(stops, s)
	}
	sort.Strings(stops)
	for _, s := range stops {
		fmt.Fprintf(&b, "  stopped %-12s %d\n", s, r.Stops[s])
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	for _, o := range r.Real {
		fmt.Fprintf(&b, "  REAL VIOLATION: %s [%s]\n", o.Detail, strings.Join(o.Properties, ","))
	}
	for _, o := range r.Panics {
		fmt.Fprintf(&b, "  PANIC: %s\n", o.Detail)
	}
	return b.String()
}
