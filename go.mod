module homonyms

go 1.24
