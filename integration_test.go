// Cross-module integration tests: full paper scenarios driven through the
// public façade and both engines, asserting the end-to-end behaviour the
// examples and tools rely on.
package homonyms_test

import (
	"testing"

	"homonyms/internal/adversary"
	"homonyms/internal/core"
	"homonyms/internal/hom"
	"homonyms/internal/runtime"
	"homonyms/internal/sim"
	"homonyms/internal/trace"
)

// TestAllSolvableVariantsEndToEnd runs one adversarial instance through
// the façade for each Table-1 variant at representative sizes.
func TestAllSolvableVariantsEndToEnd(t *testing.T) {
	cases := []struct {
		name string
		p    hom.Params
		gst  int
	}{
		{"sync-minimal", hom.Params{N: 4, L: 4, T: 1, Synchrony: hom.Synchronous}, 1},
		{"sync-homonyms", hom.Params{N: 9, L: 4, T: 1, Synchrony: hom.Synchronous}, 1},
		{"sync-t2", hom.Params{N: 11, L: 7, T: 2, Synchrony: hom.Synchronous}, 1},
		{"psync-minimal", hom.Params{N: 4, L: 4, T: 1, Synchrony: hom.PartiallySynchronous}, 9},
		{"psync-homonyms", hom.Params{N: 6, L: 5, T: 1, Synchrony: hom.PartiallySynchronous}, 17},
		{"numerate-two-ids", hom.Params{N: 7, L: 2, T: 1, Synchrony: hom.PartiallySynchronous,
			Numerate: true, RestrictedByzantine: true}, 9},
		{"numerate-sync", hom.Params{N: 7, L: 3, T: 2, Synchrony: hom.Synchronous,
			Numerate: true, RestrictedByzantine: true}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inputs := make([]hom.Value, tc.p.N)
			for i := range inputs {
				inputs[i] = hom.Value(i % 2)
			}
			adv := &adversary.Composite{
				Selector: adversary.RandomT{Seed: 99},
				Behavior: adversary.Equivocate{Seed: 99},
			}
			if tc.p.Synchrony == hom.PartiallySynchronous && !tc.p.RestrictedByzantine {
				adv.Drops = adversary.RandomDrops{Seed: 99, Prob: 0.4}
			}
			res, err := core.Run(core.Config{
				Params:    tc.p,
				Inputs:    inputs,
				Adversary: adv,
				GST:       tc.gst,
			})
			if err != nil {
				t.Fatalf("core.Run: %v", err)
			}
			if !res.Verdict.OK() {
				t.Fatalf("%s", res.Verdict)
			}
		})
	}
}

// TestConcurrentEngineEndToEnd drives the façade's selections through the
// goroutine-based runtime and checks the same verdicts hold.
func TestConcurrentEngineEndToEnd(t *testing.T) {
	p := hom.Params{N: 6, L: 5, T: 1, Synchrony: hom.PartiallySynchronous}
	sel, err := core.Select(p)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []hom.Value{1, 0, 1, 0, 1, 0}
	res, err := runtime.Run(sim.Config{
		Params:     p,
		Assignment: hom.StackedAssignment(p.N, p.L),
		Inputs:     inputs,
		NewProcess: sel.NewProcess,
		Adversary: &adversary.Composite{
			Selector: adversary.Slots{0},
			Behavior: adversary.MimicFlood{},
			Drops:    adversary.RandomDrops{Seed: 5, Prob: 0.5},
		},
		GST:       17,
		MaxRounds: sel.SuggestedRounds(17),
	})
	if err != nil {
		t.Fatalf("runtime.Run: %v", err)
	}
	if v := trace.Check(res); !v.OK() {
		t.Fatalf("%s", v)
	}
}

// TestAnonymousModelUnsolvable checks the l = 1 extreme (Okun's
// observation cited in the paper's introduction): fully anonymous
// Byzantine agreement is impossible for any t >= 1.
func TestAnonymousModelUnsolvable(t *testing.T) {
	for n := 4; n <= 8; n++ {
		p := hom.Params{N: n, L: 1, T: 1, Synchrony: hom.Synchronous}
		if p.Solvable() {
			t.Fatalf("anonymous system n=%d claimed solvable", n)
		}
		if _, err := core.Select(p); err == nil {
			t.Fatalf("Select accepted the anonymous model at n=%d", n)
		}
	}
	// ... while with t = 0 even the anonymous model is trivially fine.
	p := hom.Params{N: 4, L: 1, T: 0, Synchrony: hom.Synchronous}
	if !p.Solvable() {
		t.Fatal("fault-free anonymous agreement should be solvable")
	}
}

// TestClassicalModelMatchesKnownBounds checks the l = n extreme against
// the classical literature: n > 3t solvable in both timing models.
func TestClassicalModelMatchesKnownBounds(t *testing.T) {
	for _, sync := range []hom.Synchrony{hom.Synchronous, hom.PartiallySynchronous} {
		for n := 4; n <= 10; n++ {
			for tt := 1; tt < n; tt++ {
				p := hom.Params{N: n, L: n, T: tt, Synchrony: sync}
				want := n > 3*tt
				if got := p.Solvable(); got != want {
					t.Fatalf("classical l=n: n=%d t=%d %s solvable=%v, want %v", n, tt, sync, got, want)
				}
			}
		}
	}
}

// TestDecisionLatencyShapes spot-checks the shapes EXPERIMENTS.md claims.
func TestDecisionLatencyShapes(t *testing.T) {
	// T(EIG) decision round is 3(t+1)+2 regardless of l.
	for _, l := range []int{4, 6, 9} {
		p := hom.Params{N: 9, L: l, T: 1, Synchrony: hom.Synchronous}
		inputs := make([]hom.Value, p.N)
		res, err := core.Run(core.Config{Params: p, Inputs: inputs})
		if err != nil {
			t.Fatal(err)
		}
		if got := trace.LatestDecisionRound(res.Sim); got != 8 {
			t.Fatalf("T(EIG) l=%d decided at round %d, want 8", l, got)
		}
	}
	// Figure-5 latency grows when GST is pushed out.
	lat := func(gst int) int {
		p := hom.Params{N: 6, L: 5, T: 1, Synchrony: hom.PartiallySynchronous}
		inputs := []hom.Value{0, 1, 0, 1, 0, 1}
		res, err := core.Run(core.Config{
			Params: p,
			Inputs: inputs,
			Adversary: &adversary.Composite{
				Drops: adversary.RandomDrops{Seed: 1, Prob: 1.0},
			},
			GST: gst,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verdict.OK() {
			t.Fatalf("gst=%d: %s", gst, res.Verdict)
		}
		return trace.LatestDecisionRound(res.Sim)
	}
	if lat(33) <= lat(1) {
		t.Fatal("pushing GST out did not delay the decision")
	}
}
